// Variable-length workloads end to end: sample a synthetic long-tail corpus,
// pack it into micro batches under a token budget, simulate every headline
// schedule on the resulting mixed-length iteration, let the autotuner pick a
// method for the workload, and prove gradient parity numerically on a tiny
// model with the same mixed-length structure.
//
// Run with: go run ./examples/variable_length
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)

	// 1. A synthetic corpus: 64 documents, long-tail lengths between 8k and
	// 128k tokens — mostly short documents with a few book-length outliers.
	lengths, err := helixpipe.SampleLengths(helixpipe.DistLongTail, 64, 8192, 131072, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Greedy packing: bin the documents into micro batches holding at
	// most 128k padded tokens each (documents in a batch pad to its longest).
	workload, err := helixpipe.PackLengths(lengths, 131072)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed %d documents into %d micro batches (%d tokens per iteration)\n",
		len(lengths), workload.MicroBatches(), workload.TotalTokens())
	fmt.Println("\nsequence-length histogram:")
	for _, b := range workload.Histogram(6) {
		fmt.Printf("  %6d-%-6d  %2d micro batches  %9d tokens\n",
			b.MinSeqLen, b.MaxSeqLen, b.MicroBatches, b.Tokens)
	}

	// 3. Simulate the mixed-length iteration: every micro batch runs at its
	// own shape — durations, stashes and message volumes included.
	session, err := helixpipe.NewSession(helixpipe.Model7B(), helixpipe.H20Cluster(),
		helixpipe.WithStages(8), helixpipe.WithWorkload(workload))
	if err != nil {
		log.Fatal(err)
	}
	methods := []helixpipe.Method{
		helixpipe.Method1F1B, helixpipe.MethodZB1P, helixpipe.MethodGPipe,
	}
	fmt.Printf("\n7B on 8 H20 nodes, %d mixed-length micro batches:\n", session.MicroBatches())
	fmt.Printf("%-12s %12s %12s %10s %12s\n", "method", "iteration", "tokens/s", "bubble", "peak stash")
	for _, m := range methods {
		report, err := session.Simulate(m)
		if err != nil {
			log.Fatal(err)
		}
		sim := report.Sim
		fmt.Printf("%-12s %10.2f s %12.0f %9.1f%% %9.1f GB\n",
			m, sim.IterationSeconds, sim.TokensPerSecond,
			sim.BubbleFraction*100, float64(sim.MaxPeakStashBytes)/(1<<30))
	}

	// 4. Ask the autotuner which schedule fits this workload best. (The
	// helix FILO schedules need m to divide fold*stages, so on an odd-sized
	// packing they are pruned as build errors rather than mis-ranked.)
	tuneRes, err := session.Autotune(helixpipe.TuneSpec{Stages: []int{8}})
	if err != nil {
		log.Fatal(err)
	}
	if len(tuneRes.Best) > 0 {
		best := tuneRes.Best[0]
		fmt.Printf("\nautotuner pick for this workload: %s (%0.f tokens/s, peak %.1f GB)\n",
			best.Method, best.TokensPerSecond, float64(best.PeakBytes)/(1<<30))
	}

	// 5. Numeric proof on a tiny model: a mixed-length iteration through the
	// pipeline executor produces gradients bit-identical to the sequential
	// single-device reference.
	tinyWL := helixpipe.BatchSpec{Shapes: []helixpipe.Shape{
		{B: 1, S: 8}, {B: 2, S: 16}, {B: 1, S: 12}, {B: 1, S: 16},
	}}
	tiny, err := helixpipe.NewSession(helixpipe.TinyModel(), helixpipe.H20Cluster(),
		helixpipe.WithStages(2), helixpipe.WithWorkload(tinyWL))
	if err != nil {
		log.Fatal(err)
	}
	engine := tiny.NumericEngine(7)
	report, err := tiny.Run(engine, helixpipe.MethodHelix)
	if err != nil {
		log.Fatal(err)
	}
	refLoss, refGrads := helixpipe.ReferenceStep(engine.Model, engine.Batches)
	diff := helixpipe.GradDiff(report.NumericResult().Grads, refGrads)
	fmt.Printf("\nnumeric parity on mixed lengths: loss %.6f (reference %.6f), max gradient diff %g\n",
		report.Numeric.Loss, refLoss, diff)
	if diff != 0 {
		log.Fatal("gradients diverged from the sequential reference")
	}
}
