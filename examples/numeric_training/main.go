// Numeric training: train one tiny GPT twice from identical initialization —
// once on a single device, once pipeline-parallel under HelixPipe's two-fold
// FILO schedule with recomputation — and show the loss curves coincide
// exactly, step by step. This is the paper's section 4.1 claim ("maintains
// the same computation semantics and convergence as 1F1B") made executable.
//
// Run with: go run ./examples/numeric_training
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	cfg := helixpipe.TinyModel()
	const stages, microBatches, seqLen, steps = 2, 8, 16, 8
	const seed = 1234

	// One session describes the geometry; the numeric engine runs the same
	// plan the simulator would time, on real tensors.
	session, err := helixpipe.NewSession(cfg, helixpipe.H20Cluster(),
		helixpipe.WithSeqLen(seqLen),
		helixpipe.WithStages(stages),
		helixpipe.WithMicroBatches(microBatches))
	if err != nil {
		log.Fatal(err)
	}
	plan, err := session.Plan(helixpipe.MethodHelix)
	if err != nil {
		log.Fatal(err)
	}

	pipe := helixpipe.NewNumericModel(cfg, seed)
	ref := helixpipe.NewNumericModel(cfg, seed)
	optPipe := helixpipe.NewAdam(3e-3)
	optRef := helixpipe.NewAdam(3e-3)

	fmt.Printf("%-5s %-14s %-14s %-10s\n", "step", "helix loss", "reference loss", "identical")
	for step := 0; step < steps; step++ {
		batches := make([]helixpipe.MicroBatch, microBatches)
		for i := range batches {
			batches[i] = helixpipe.SyntheticBatch(cfg, 1, seqLen, uint64(step*microBatches+i)+1)
		}
		engine := helixpipe.NewNumericEngine(pipe, batches)
		report, err := engine.Run(plan)
		if err != nil {
			log.Fatal(err)
		}
		res := report.NumericResult()
		refLoss, refGrads := helixpipe.ReferenceStep(ref, batches)
		same := res.Loss == refLoss && helixpipe.GradDiff(res.Grads, refGrads) == 0
		fmt.Printf("%-5d %-14.9f %-14.9f %v\n", step, res.Loss, refLoss, same)
		if !same {
			log.Fatal("semantics violated: pipeline differs from single device")
		}
		optPipe.Step(pipe, res.Grads)
		optRef.Step(ref, refGrads)
	}
	fmt.Println("\nHelixPipe's attention parallel partition reorders work across stages but")
	fmt.Println("preserves each micro batch's computation order: training is bit-identical.")
}
