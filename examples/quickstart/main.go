// Quickstart: simulate the paper's headline configuration — a 7B model at
// 128k sequence length on 8 H20 nodes — under all four evaluated pipeline
// parallelisms, and print the throughput comparison.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	scenario := helixpipe.NewScenario(helixpipe.Model7B(), helixpipe.H20Cluster(), 131072, 8)
	fmt.Printf("7B model, 128k tokens/sequence, %d pipeline stages (one 8-GPU node each), %d micro batches\n\n",
		scenario.Stages, scenario.MicroBatches)

	methods := []helixpipe.Method{
		helixpipe.Method1F1B, helixpipe.MethodZB1P, helixpipe.MethodAdaPipe, helixpipe.MethodHelix,
	}
	tokens := scenario.TokensPerIteration()
	best := 0.0
	results := map[helixpipe.Method]*helixpipe.SimResult{}
	for _, m := range methods {
		res, err := scenario.Simulate(m)
		if err != nil {
			log.Fatalf("%s: %v", m, err)
		}
		results[m] = res
		if tput := res.Throughput(tokens); tput > best {
			best = tput
		}
	}
	fmt.Printf("%-12s %12s %12s %10s %12s\n", "method", "iteration", "tokens/s", "bubble", "peak stash")
	for _, m := range methods {
		res := results[m]
		fmt.Printf("%-12s %10.2f s %12.0f %9.1f%% %9.1f GB\n",
			m, res.IterationSeconds, res.Throughput(tokens),
			res.BubbleSeconds()/res.IterationSeconds*100,
			float64(res.MaxPeakStashBytes())/(1<<30))
	}
	helix := results[helixpipe.MethodHelix].Throughput(tokens)
	baseline := 0.0
	for _, m := range methods[:3] {
		if t := results[m].Throughput(tokens); t > baseline {
			baseline = t
		}
	}
	fmt.Printf("\nHelixPipe vs best baseline: %+.1f%% (paper reports 26%% on its H20 testbed)\n",
		(helix/baseline-1)*100)
}
