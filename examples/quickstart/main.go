// Quickstart: simulate the paper's headline configuration — a 7B model at
// 128k sequence length on 8 H20 nodes — under all four evaluated pipeline
// parallelisms, and print the throughput comparison.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	session, err := helixpipe.NewSession(helixpipe.Model7B(), helixpipe.H20Cluster(),
		helixpipe.WithSeqLen(131072), helixpipe.WithStages(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("7B model, 128k tokens/sequence, %d pipeline stages (one 8-GPU node each), %d micro batches\n\n",
		session.Stages(), session.MicroBatches())

	methods := []helixpipe.Method{
		helixpipe.Method1F1B, helixpipe.MethodZB1P, helixpipe.MethodAdaPipe, helixpipe.MethodHelix,
	}
	results := map[helixpipe.Method]*helixpipe.Report{}
	for _, m := range methods {
		report, err := session.Simulate(m)
		if err != nil {
			log.Fatal(err)
		}
		results[m] = report
	}
	fmt.Printf("%-12s %12s %12s %10s %12s\n", "method", "iteration", "tokens/s", "bubble", "peak stash")
	for _, m := range methods {
		sim := results[m].Sim
		fmt.Printf("%-12s %10.2f s %12.0f %9.1f%% %9.1f GB\n",
			m, sim.IterationSeconds, sim.TokensPerSecond,
			sim.BubbleFraction*100, float64(sim.MaxPeakStashBytes)/(1<<30))
	}
	helix := results[helixpipe.MethodHelix].Sim.TokensPerSecond
	baseline := 0.0
	for _, m := range methods[:3] {
		if t := results[m].Sim.TokensPerSecond; t > baseline {
			baseline = t
		}
	}
	fmt.Printf("\nHelixPipe vs best baseline: %+.1f%% (paper reports 26%% on its H20 testbed)\n",
		(helix/baseline-1)*100)
}
