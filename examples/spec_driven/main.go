// Spec-driven experiments: instead of hand-building a session from option
// chains, load a committed ExperimentSpec, resolve it eagerly into a
// session plus a RunSet, and stream its reports with Session.Execute. The
// same file drives helixsim (-spec examples/spec_driven/paper_128k.json),
// so a result in a paper, a CI log and this example are all the same
// reproducible artifact.
//
// Run with: go run ./examples/spec_driven
package main

import (
	"fmt"
	"log"
	"os"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)

	// 1. Load the committed paper configuration: 3B on the A800 testbed at
	// 128k tokens per sequence, the four headline schedules.
	spec, err := helixpipe.ParseSpecFile("examples/spec_driven/paper_128k.json")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Resolve it eagerly: every unknown name or impossible geometry
	// errors here, before anything simulates. The RunSet is the resolved
	// execution plan — what Execute will run, cell by cell.
	session, runset, err := spec.Resolve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolved a %s run of %d cells on %s/%s (seq %d, %d stages)\n\n",
		runset.Kind, len(runset.Cells), spec.Model, spec.Cluster,
		session.SeqLen(), session.Stages())

	// 3. Execute streams reports as each cell's simulation completes — a
	// 500-cell sweep holds at most a worker-pool's worth of reports, not
	// five hundred.
	fmt.Printf("%-12s %12s %12s %10s\n", "method", "iteration", "tokens/s", "bubble")
	for report, err := range session.Execute(spec) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %10.2f s %12.0f %9.1f%%\n",
			report.Method, report.Sim.IterationSeconds,
			report.Sim.TokensPerSecond, report.Sim.BubbleFraction*100)
	}

	// 4. Reproduction: Resolved() fills every default and canonicalizes
	// every name; the emitted spec re-resolves to an identical RunSet. This
	// is what the tools' -emit-spec writes.
	resolved, err := spec.Resolved()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfully-resolved spec (helixsim -emit-spec equivalent):")
	if err := helixpipe.WriteSpec(os.Stdout, resolved); err != nil {
		log.Fatal(err)
	}

	// 5. A sweep is the same spec with axes: derive one in code, stream it.
	sweep := *resolved
	sweep.Methods = []string{"1F1B", "HelixPipe"}
	sweep.Sweep = &helixpipe.SpecSweep{SeqLens: []int{32768, 131072}, Stages: []int{4, 8}}
	fmt.Println("\nsweeping seq {32k, 128k} x pp {4, 8}:")
	for report, err := range session.Execute(&sweep) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s seq=%-7d p=%d  %10.0f tokens/s\n",
			report.Method, report.SeqLen, report.Stages, report.Sim.TokensPerSecond)
	}
}
