// Schedule explorer: render the pipeline schedules this repository
// implements as ASCII timelines under the paper's didactic 1:3:2
// pre:attention:post cost ratio, and see the bubble shrink from GPipe
// through 1F1B and ZB1P to HelixPipe's attention parallel partition.
//
// Every schedule is built through the method registry — the same path the
// Session API uses — so the list below stays in sync with whatever methods
// are registered.
//
// Run with: go run ./examples/schedule_explorer
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	cfg := helixpipe.ScheduleConfig{Stages: 4, MicroBatches: 8, Layers: 8}
	costs := helixpipe.UnitCosts(0)
	noRecompute := false

	type entry struct {
		name   string
		method helixpipe.Method
		params helixpipe.BuildParams
	}
	entries := []entry{
		{"GPipe", helixpipe.MethodGPipe, helixpipe.BuildParams{}},
		{"1F1B", helixpipe.Method1F1B, helixpipe.BuildParams{}},
		{"ZB1P", helixpipe.MethodZB1P, helixpipe.BuildParams{}},
		{"Interleaved 1F1B", helixpipe.MethodInterleaved, helixpipe.BuildParams{}},
		{"HelixPipe naive FILO", helixpipe.MethodHelixNaive, helixpipe.BuildParams{HelixRecompute: &noRecompute}},
		{"HelixPipe two-fold FILO", helixpipe.MethodHelix, helixpipe.BuildParams{HelixRecompute: &noRecompute}},
		{"HelixPipe two-fold + recompute", helixpipe.MethodHelix, helixpipe.BuildParams{}},
	}
	engine := helixpipe.NewSimEngine(helixpipe.SimOptions{Trace: true})
	fmt.Printf("4 stages, 8 micro batches, 8 layers, unit costs pre:attn:post = 1:3:2\n\n")
	for _, e := range entries {
		plan, err := helixpipe.BuildMethod(e.method, cfg, costs, e.params)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		report, err := engine.Run(plan)
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("--- %s: iteration %.0f units, mean bubble %.0f units\n",
			e.name, report.Sim.IterationSeconds, report.Sim.BubbleSeconds)
		fmt.Println(report.TimelineASCII(132))
	}
	fmt.Println("Note how attention (the 3-unit blocks) leaves the critical path under HelixPipe:")
	fmt.Println("the bubble no longer grows with the layer count, only with pre+post time.")
}
