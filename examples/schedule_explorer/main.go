// Schedule explorer: render the pipeline schedules this repository
// implements as ASCII timelines under the paper's didactic 1:3:2
// pre:attention:post cost ratio, and see the bubble shrink from GPipe
// through 1F1B and ZB1P to HelixPipe's attention parallel partition.
//
// Run with: go run ./examples/schedule_explorer
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
)

func main() {
	log.SetFlags(0)
	cfg := helixpipe.ScheduleConfig{Stages: 4, MicroBatches: 8, Layers: 8}
	costs := helixpipe.UnitCosts(0)

	type entry struct {
		name  string
		build func() (*helixpipe.Plan, error)
	}
	entries := []entry{
		{"GPipe", func() (*helixpipe.Plan, error) { return helixpipe.BuildBaseline(helixpipe.MethodGPipe, cfg, costs) }},
		{"1F1B", func() (*helixpipe.Plan, error) { return helixpipe.BuildBaseline(helixpipe.Method1F1B, cfg, costs) }},
		{"ZB1P", func() (*helixpipe.Plan, error) { return helixpipe.BuildBaseline(helixpipe.MethodZB1P, cfg, costs) }},
		{"Interleaved 1F1B", func() (*helixpipe.Plan, error) {
			return helixpipe.BuildBaseline(helixpipe.MethodInterleaved, cfg, costs)
		}},
		{"HelixPipe naive FILO", func() (*helixpipe.Plan, error) {
			return helixpipe.BuildHelix(cfg, costs, helixpipe.HelixOptions{Fold: 1, Recompute: false})
		}},
		{"HelixPipe two-fold FILO", func() (*helixpipe.Plan, error) {
			return helixpipe.BuildHelix(cfg, costs, helixpipe.HelixOptions{Fold: 2, Recompute: false})
		}},
		{"HelixPipe two-fold + recompute", func() (*helixpipe.Plan, error) {
			return helixpipe.BuildHelix(cfg, costs, helixpipe.HelixOptions{Fold: 2, Recompute: true})
		}},
	}
	fmt.Printf("4 stages, 8 micro batches, 8 layers, unit costs pre:attn:post = 1:3:2\n\n")
	for _, e := range entries {
		plan, err := e.build()
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		res, err := helixpipe.Simulate(plan, helixpipe.SimOptions{Trace: true})
		if err != nil {
			log.Fatalf("%s: %v", e.name, err)
		}
		fmt.Printf("--- %s: iteration %.0f units, mean bubble %.0f units\n",
			e.name, res.IterationSeconds, res.BubbleSeconds())
		fmt.Println(helixpipe.TimelineASCII(res, 132))
	}
	fmt.Println("Note how attention (the 3-unit blocks) leaves the critical path under HelixPipe:")
	fmt.Println("the bubble no longer grows with the layer count, only with pre+post time.")
}
