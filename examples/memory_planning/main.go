// Memory planning: can this model at this sequence length fit the cluster?
// The example reproduces the paper's memory story end to end: the skewed
// 1F1B activation footprint of Figure 4 (13B at 128k blows past 80 GB on
// the first stages), the balanced FILO footprint of HelixPipe, and the
// caching-allocator fragmentation that chunked MLP removes (section 4.4.2).
//
// Run with: go run ./examples/memory_planning
package main

import (
	"fmt"
	"log"

	helixpipe "repro"
	"repro/internal/memsim"
)

func main() {
	log.SetFlags(0)

	// Part 1 — Figure 4: analytic 1F1B activation memory per stage.
	cfg := helixpipe.Model13B()
	const stages, seqPar = 8, 8
	fmt.Println("1F1B activation memory per stage, 13B model, fp16, sequence parallel 8 (paper Figure 4):")
	fmt.Printf("%-6s", "seq")
	for st := 0; st < stages; st++ {
		fmt.Printf("  P%-5d", st)
	}
	fmt.Println("  A800 fits?")
	for _, seq := range []int{32768, 65536, 131072} {
		fmt.Printf("%-6s", fmt.Sprintf("%dk", seq/1024))
		worst := 0.0
		for st := 0; st < stages; st++ {
			gb := float64(cfg.ActivationBytes1F1B(helixpipe.Shape{B: 1, S: seq}, stages, st, seqPar)) / (1 << 30)
			if gb > worst {
				worst = gb
			}
			fmt.Printf("  %6.1f", gb)
		}
		fits := "yes"
		if worst > 80 {
			fits = "NO (stage 0 exceeds 80 GB)"
		}
		fmt.Printf("  %s\n", fits)
	}

	// Part 2 — simulated footprints: 1F1B skew vs HelixPipe balance.
	fmt.Println("\nSimulated peak activation stash, 3B model at 128k, p=8 (paper Figure 10):")
	session, err := helixpipe.NewSession(helixpipe.Model3B(), helixpipe.H20Cluster(),
		helixpipe.WithSeqLen(131072), helixpipe.WithStages(8))
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range []helixpipe.Method{helixpipe.Method1F1B, helixpipe.MethodZB1P, helixpipe.MethodHelix} {
		report, err := session.Simulate(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", m)
		for _, st := range report.Sim.PerStage {
			fmt.Printf("  %5.1f", float64(st.PeakStashBytes)/(1<<30))
		}
		fmt.Println(" GB")
	}

	// Part 3 — chunked MLP vs allocator fragmentation.
	fmt.Println("\nCaching-allocator replay of one HelixPipe stage at 128k (paper section 4.4.2):")
	base := memsim.DefaultConfig()
	base.SegmentBytes = 64 << 20
	unit := int64(131072) * 4096 * 2 / 8
	plain, chunked, err := memsim.CompareChunking(base, memsim.ChunkedMLPConfig{
		UnitBytes: unit, LayersPerStage: 4, MicroBatches: 8, ChunkTokensFrac: 0.125,
	})
	if err != nil {
		log.Fatal(err)
	}
	report := func(name string, st memsim.Stats) {
		fmt.Printf("%-10s reserved %6.1f GB  allocated %6.1f GB  fragmentation ratio %.3f\n",
			name, float64(st.PeakReservedBytes)/(1<<30), float64(st.PeakAllocatedBytes)/(1<<30),
			st.FragmentationRatio())
	}
	report("unchunked", plain)
	report("chunked", chunked)
	fmt.Println("\nChunked MLP streams the all-gathered sequence through pre-allocated buffers,")
	fmt.Println("eliminating the irregular transients that pin holes between FILO stashes.")
}
