package helixpipe

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/nn"
	"repro/internal/sched"
	"repro/internal/tensor"
)

// Numeric runtime types.
type (
	// NumericModel is a real-parameter GPT stack for the numeric runtime.
	NumericModel = nn.Model
	// MicroBatch is one micro batch of token ids and targets.
	MicroBatch = nn.MicroBatch
	// NumericResult is the outcome of a numerically executed iteration.
	NumericResult = exec.Result
	// Grads aggregates parameter gradients by canonical name.
	Grads = nn.Grads
	// Adam is the reference optimizer.
	Adam = nn.Adam
)

// NewNumericModel deterministically initializes a model for the numeric
// runtime. The same seed gives bit-identical parameters however the model
// is later distributed.
func NewNumericModel(cfg ModelConfig, seed uint64) *NumericModel { return nn.NewModel(cfg, seed) }

// NewAdam returns an Adam optimizer with conventional defaults.
func NewAdam(lr float64) *Adam { return nn.NewAdam(lr) }

// SyntheticBatch generates a deterministic synthetic micro batch, mirroring
// the paper's synthesized full-length datasets.
func SyntheticBatch(cfg ModelConfig, b, s int, seed uint64) MicroBatch {
	return nn.SyntheticBatch(cfg, b, s, seed)
}

// RunNumeric executes one training iteration of a plan on real tensors:
// one goroutine per pipeline stage, channels as interconnect.
func RunNumeric(p *Plan, m *NumericModel, batches []MicroBatch) (*NumericResult, error) {
	return exec.Run(p, m, batches)
}

// ReferenceStep runs the single-device ground-truth iteration.
func ReferenceStep(m *NumericModel, batches []MicroBatch) (float64, *Grads) {
	return nn.ReferenceStep(m, batches)
}

// GradDiff returns the largest absolute per-parameter difference between
// two gradient sets — zero means bit-identical training semantics.
func GradDiff(a, b *Grads) float64 {
	var worst float64
	bn := b.Named()
	for name, ga := range a.Named() {
		if d := tensor.MaxAbsDiff(ga, bn[name]); d > worst {
			worst = d
		}
	}
	return worst
}

// TrainConfig drives a short numeric pipeline-training run.
type TrainConfig struct {
	// Model is the transformer configuration (use TinyModel for demos).
	Model ModelConfig
	// Method is the pipeline parallelism to train with.
	Method Method
	// Stages and MicroBatches shape the pipeline.
	Stages, MicroBatches int
	// Batch and SeqLen shape each micro batch.
	Batch, SeqLen int
	// Steps is the number of optimizer steps.
	Steps int
	// LR is the Adam learning rate.
	LR float64
	// Seed controls parameter init and data generation.
	Seed uint64
}

// TrainReport records the loss trajectory of a numeric training run.
type TrainReport struct {
	// Losses holds the per-step mean micro-batch losses.
	Losses []float64
}

// Train runs a short pipeline-parallel training loop numerically and
// returns the loss trajectory. It demonstrates end-to-end that a schedule
// trains a real model; combined with ReferenceStep it shows convergence
// parity (paper section 4.1).
func Train(cfg TrainConfig) (*TrainReport, error) {
	if cfg.Steps <= 0 || cfg.MicroBatches <= 0 {
		return nil, fmt.Errorf("helixpipe: Steps and MicroBatches must be positive")
	}
	m := nn.NewModel(cfg.Model, cfg.Seed)
	scfg := sched.Config{Stages: cfg.Stages, MicroBatches: cfg.MicroBatches, Layers: cfg.Model.Layers}
	plan, err := sched.Build(cfg.Method, scfg, sched.UnitCosts(0), sched.BuildParams{})
	if err != nil {
		return nil, err
	}
	opt := nn.NewAdam(cfg.LR)
	report := &TrainReport{}
	for step := 0; step < cfg.Steps; step++ {
		batches := make([]nn.MicroBatch, cfg.MicroBatches)
		for i := range batches {
			batches[i] = nn.SyntheticBatch(cfg.Model, cfg.Batch, cfg.SeqLen,
				cfg.Seed+uint64(step*cfg.MicroBatches+i)+1)
		}
		res, err := exec.Run(plan, m, batches)
		if err != nil {
			return nil, err
		}
		report.Losses = append(report.Losses, res.Loss)
		opt.Step(m, res.Grads)
	}
	return report, nil
}
