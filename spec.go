package helixpipe

// This file is the declarative experiment layer: an ExperimentSpec is a
// JSON-round-trippable description of everything one experiment needs —
// model, cluster (flat or topology), placement, perturbation, workload or
// fixed shape, methods, engine, sweep axes, tune grid, output selection.
// ParseSpec/WriteSpec serialize it, Resolve validates it eagerly into a
// Session plus a RunSet, and Session.Execute (session.go) streams its
// reports. The command-line tools layer their flags on top of a spec
// (internal/cliutil), so every run can be saved, diffed and reproduced from
// one artifact.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cluster"
	"repro/internal/model"
)

// The engines an ExperimentSpec can name.
const (
	// SpecEngineSim runs the discrete-event cluster simulator (the default).
	SpecEngineSim = EngineSim
	// SpecEngineNumeric runs the goroutine-per-stage numeric runtime.
	SpecEngineNumeric = EngineNumeric
)

// The RunSet kinds a spec resolves to.
const (
	// RunKindRun is a single-configuration run: one cell per method.
	RunKindRun = "run"
	// RunKindSweep is a seqlen x stages x method grid of cells.
	RunKindSweep = "sweep"
	// RunKindTune is an autotuner search over the spec's tune grid.
	RunKindTune = "tune"
	// RunKindFleet is a shared-cluster job-stream simulation of the spec's
	// fleet section (Session.Fleet / helixfleet).
	RunKindFleet = "fleet"
	// RunKindDecode is an interactive-decoding KVP x TPA search of the
	// spec's decode section (Session.Decode / helixserve).
	RunKindDecode = "decode"
)

// SpecWorkload describes a variable-length workload inside an
// ExperimentSpec: either an explicit per-micro-batch shape list, or a
// synthetic corpus (a length distribution sampled and packed under a token
// budget, deterministically from the seed).
type SpecWorkload struct {
	// Dist names the synthetic document-length distribution ("uniform",
	// "bimodal", "longtail"). Ignored when Shapes is set.
	Dist string `json:"dist,omitempty"`
	// Docs is the number of documents to sample (default 64).
	Docs int `json:"docs,omitempty"`
	// MinSeq is the shortest document (default MaxSeq/16).
	MinSeq int `json:"min_seq,omitempty"`
	// MaxSeq is the longest document and the per-micro-batch token budget
	// documents are packed under (default the spec's seq_len).
	MaxSeq int `json:"max_seq,omitempty"`
	// Seed drives the sampling deterministically (default 42).
	Seed uint64 `json:"seed,omitempty"`
	// Order names the micro-batch execution order applied after packing
	// ("packed", "longest", "shortest", "balanced"; default packed).
	Order string `json:"order,omitempty"`
	// Shapes pins the per-micro-batch shapes explicitly, bypassing sampling.
	Shapes []Shape `json:"shapes,omitempty"`
}

// SpecHelix pins the HelixPipe build options for every helix method of the
// spec, overriding each variant's registered default.
type SpecHelix struct {
	// Fold is the FILO fold factor (1 or 2).
	Fold int `json:"fold,omitempty"`
	// Recompute toggles recomputation without attention; nil keeps the
	// variant's default.
	Recompute *bool `json:"recompute,omitempty"`
}

// SpecSweep adds sweep axes to a spec: the run becomes a seqlen x stages x
// method grid. Empty axes fall back to the spec's own value. On a workload
// spec only the stages axis may sweep — a seq_lens axis would discard the
// workload's per-micro-batch shapes, so Resolve rejects the combination.
type SpecSweep struct {
	// SeqLens are the sequence lengths to sweep; empty means the spec's.
	// Mutually exclusive with Workload.
	SeqLens []int `json:"seq_lens,omitempty"`
	// Stages are the pipeline sizes to sweep; empty means the spec's.
	Stages []int `json:"stages,omitempty"`
}

// SpecTune turns the spec into an autotuner search over its grid. Empty
// axes fall back to the spec's own geometry.
type SpecTune struct {
	// SeqLens are the candidate sequence lengths; empty means the spec's
	// seq_len (or, with a workload, no fixed-length block).
	SeqLens []int `json:"seq_lens,omitempty"`
	// Stages are the candidate pipeline sizes; empty means the spec's.
	Stages []int `json:"stages,omitempty"`
	// MicroBatches are the candidate micro-batch counts; a 0 entry means the
	// paper default m = 2p.
	MicroBatches []int `json:"micro_batches,omitempty"`
	// MicroBatchSizes are the candidate micro-batch sizes; empty means the
	// spec's.
	MicroBatchSizes []int `json:"micro_batch_sizes,omitempty"`
	// BudgetGB is the per-GPU memory budget in GB, model states included
	// (0 = the GPU's full capacity).
	BudgetGB float64 `json:"budget_gb,omitempty"`
	// Workers bounds the simulation worker pool; 0 picks GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// Placements are the placement strategies to search per grid point on a
	// topology cluster; empty means all of them.
	Placements []string `json:"placements,omitempty"`
	// Orders are the micro-batch ordering policies to cross with the spec's
	// workload ("packed", "longest", "shortest", "balanced"); requires a
	// workload. Empty keeps the workload's own order.
	Orders []string `json:"orders,omitempty"`
	// Objective ranks points: "throughput" (default, tokens/s up) or
	// "latency_per_token" (seconds/token down).
	Objective string `json:"objective,omitempty"`
	// Budget is an early-stopping target in the objective's unit: the search
	// stops streaming once a point meets it (tokens/s at or above, or
	// seconds/token at or below). 0 disables early stopping.
	Budget float64 `json:"budget,omitempty"`
}

// SpecFleetTemplate is one job shape of a fleet section. Its geometry
// fields override the surrounding spec's; zero values inherit. The
// template's stage count is also its device demand — one device per stage.
type SpecFleetTemplate struct {
	// Name labels the template ("short-32k"); trace entries reference it.
	Name string `json:"name"`
	// Weight is the template's draw weight under generated arrivals
	// (default 1).
	Weight float64 `json:"weight,omitempty"`
	// Method is the single pipeline method the template's jobs run
	// (default "helix").
	Method string `json:"method,omitempty"`
	// Stages is the pipeline size and device demand (default the spec's).
	Stages int `json:"stages,omitempty"`
	// SeqLen pins a fixed sequence length, replacing any inherited
	// workload (default the spec's seq_len / workload).
	SeqLen int `json:"seq_len,omitempty"`
	// MicroBatchSize and MicroBatches override the spec's geometry.
	MicroBatchSize int `json:"micro_batch_size,omitempty"`
	MicroBatches   int `json:"micro_batches,omitempty"`
	// Priority orders preemptive admission; higher preempts lower.
	Priority int `json:"priority,omitempty"`
	// Iterations is the template's training length (default the fleet
	// section's iterations).
	Iterations int `json:"iterations,omitempty"`
}

// SpecFleet turns the spec into a shared-cluster job-stream simulation: a
// stream of jobs drawn from the templates arrives at the spec's topology
// cluster and an admission/placement policy carves devices for each. Requires
// a topology cluster and the sim engine; mutually exclusive with Sweep and
// Tune.
type SpecFleet struct {
	// Policy names the admission/placement policy ("fifo", "bestfit",
	// "worstfit", "backfill", "preempt"; default fifo).
	Policy string `json:"policy,omitempty"`
	// Jobs is the number of jobs to generate (default 50). Ignored with a
	// trace.
	Jobs int `json:"jobs,omitempty"`
	// Arrival names the arrival generator ("poisson" or "bursty"; default
	// poisson). Ignored with a trace.
	Arrival string `json:"arrival,omitempty"`
	// RatePerHour is the mean arrival rate (default 12 jobs/hour). Ignored
	// with a trace.
	RatePerHour float64 `json:"rate_per_hour,omitempty"`
	// BurstSize is the bursty generator's jobs per burst (default 4).
	BurstSize int `json:"burst_size,omitempty"`
	// Seed drives arrival generation and template draws (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Iterations is the default training length of a job (default 50).
	Iterations int `json:"iterations,omitempty"`
	// Trace replays arrivals from a JSON trace file (an array of
	// {arrival_sec, template, priority?, iterations?}) instead of
	// generating them.
	Trace string `json:"trace,omitempty"`
	// Templates are the job shapes of the stream (at least one).
	Templates []SpecFleetTemplate `json:"templates"`
}

// normalized deep-copies a fleet section, fills its defaults and validates
// it against the parent spec. It is idempotent, like ExperimentSpec's own
// normalized, so -emit-spec round-trips fleet specs exactly.
func (f *SpecFleet) normalized(parent *ExperimentSpec) (*SpecFleet, error) {
	n := *f
	n.Templates = append([]SpecFleetTemplate(nil), n.Templates...)
	if n.Policy == "" {
		n.Policy = FleetPolicyFIFO
	}
	policy, ok := FleetPolicyByName(n.Policy)
	if !ok {
		return nil, fmt.Errorf("helixpipe: unknown fleet policy %q; the policies are:\n%s",
			n.Policy, FleetPolicyListing())
	}
	n.Policy = policy.Name
	if n.Trace != "" {
		// A trace replays recorded arrivals; generator knobs would silently
		// do nothing.
		if n.Jobs != 0 || n.Arrival != "" || n.RatePerHour != 0 || n.BurstSize != 0 {
			return nil, fmt.Errorf("helixpipe: a fleet trace replays recorded arrivals; drop jobs/arrival/rate_per_hour/burst_size")
		}
	} else {
		if n.Jobs == 0 {
			n.Jobs = 50
		}
		if n.Jobs < 0 {
			return nil, fmt.Errorf("helixpipe: fleet jobs must be positive, got %d", n.Jobs)
		}
		switch n.Arrival {
		case "":
			n.Arrival = FleetArrivalPoisson
		case FleetArrivalPoisson, FleetArrivalBursty:
		default:
			return nil, fmt.Errorf("helixpipe: unknown fleet arrival generator %q (want %s or %s)",
				n.Arrival, FleetArrivalPoisson, FleetArrivalBursty)
		}
		if n.RatePerHour == 0 {
			n.RatePerHour = 12
		}
		if n.RatePerHour < 0 {
			return nil, fmt.Errorf("helixpipe: fleet rate_per_hour must be positive, got %g", n.RatePerHour)
		}
		if n.Arrival == FleetArrivalBursty {
			if n.BurstSize == 0 {
				n.BurstSize = 4
			}
			if n.BurstSize < 0 {
				return nil, fmt.Errorf("helixpipe: fleet burst_size must be positive, got %d", n.BurstSize)
			}
		} else if n.BurstSize != 0 {
			return nil, fmt.Errorf("helixpipe: fleet burst_size requires the bursty arrival generator")
		}
	}
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.Iterations == 0 {
		n.Iterations = 50
	}
	if n.Iterations < 0 {
		return nil, fmt.Errorf("helixpipe: fleet iterations must be positive, got %d", n.Iterations)
	}
	if len(n.Templates) == 0 {
		return nil, fmt.Errorf("helixpipe: fleet needs at least one job template")
	}
	seen := map[string]bool{}
	for i := range n.Templates {
		t := &n.Templates[i]
		if t.Name == "" {
			return nil, fmt.Errorf("helixpipe: fleet template %d has no name", i)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("helixpipe: duplicate fleet template %q", t.Name)
		}
		seen[t.Name] = true
		if t.Weight == 0 {
			t.Weight = 1
		}
		if t.Weight < 0 {
			return nil, fmt.Errorf("helixpipe: fleet template %q weight must be positive, got %g", t.Name, t.Weight)
		}
		if t.Method == "" {
			t.Method = string(MethodHelix)
		}
		m, ok := LookupMethod(t.Method)
		if !ok {
			return nil, fmt.Errorf("helixpipe: fleet template %q names unknown method %q; the registered methods are:\n%s",
				t.Name, t.Method, MethodListing())
		}
		t.Method = string(m)
		if t.Stages == 0 {
			t.Stages = parent.Stages
		}
		if t.Iterations == 0 {
			t.Iterations = n.Iterations
		}
		if t.Iterations < 0 {
			return nil, fmt.Errorf("helixpipe: fleet template %q iterations must be positive, got %d", t.Name, t.Iterations)
		}
	}
	return &n, nil
}

// SpecDecode turns the spec into an interactive-decoding scenario: the
// Helix Parallelism setting where a batch of concurrent sessions decodes
// against a multi-million-token KV cache and attention shards over KV
// heads (TPA) versus sequence (KVP). The search sweeps the KVP x TPA
// lattice (or explicit axes) under a per-device KV-memory prune and ranks
// by latency per token or throughput. Requires the sim engine; mutually
// exclusive with Sweep, Tune, Fleet and Workload.
type SpecDecode struct {
	// ContextLen is the KV-cache length every session starts decoding from
	// (default 1M tokens — the Helix Parallelism regime).
	ContextLen int `json:"context_len,omitempty"`
	// DecodeTokens is the number of tokens each session generates
	// (default 32).
	DecodeTokens int `json:"decode_tokens,omitempty"`
	// Sessions is the batch of concurrent sessions (default 4).
	Sessions int `json:"sessions,omitempty"`
	// GPUs is the tensor-parallel world size the lattice carves
	// (default 8).
	GPUs int `json:"gpus,omitempty"`
	// KVHeads is the GQA KV-head count K; 0 defaults to the model's full
	// head count (MHA). Must be unset under MLA.
	KVHeads int `json:"kv_heads,omitempty"`
	// MLA switches to multi-head latent attention: one shared latent per
	// token (effective K = 1, so TPA is pinned to 1).
	MLA bool `json:"mla,omitempty"`
	// LatentDim is the MLA latent width (default 512); requires MLA.
	LatentDim int `json:"latent_dim,omitempty"`
	// KVP and TPA pin explicit sharding axes to cross; empty sweeps the
	// full-utilization lattice KVP*TPA = GPUs.
	KVP []int `json:"kvp,omitempty"`
	TPA []int `json:"tpa,omitempty"`
	// Objective ranks shardings: "latency_per_token" (default) or
	// "throughput".
	Objective string `json:"objective,omitempty"`
	// BudgetGB is the per-device memory budget the KV prune checks weights
	// plus peak cache against; 0 means the GPU's full capacity.
	BudgetGB float64 `json:"budget_gb,omitempty"`
}

// normalized deep-copies a decode section, fills its defaults and validates
// it against the parent spec. Idempotent, like ExperimentSpec's own
// normalized, so -emit-spec round-trips decode specs exactly.
func (d *SpecDecode) normalized(parent *ExperimentSpec) (*SpecDecode, error) {
	n := *d
	n.KVP = append([]int(nil), n.KVP...)
	n.TPA = append([]int(nil), n.TPA...)
	if n.ContextLen == 0 {
		n.ContextLen = 1 << 20
	}
	if n.ContextLen < 0 {
		return nil, fmt.Errorf("helixpipe: decode context_len must be positive, got %d", n.ContextLen)
	}
	if n.DecodeTokens == 0 {
		n.DecodeTokens = 32
	}
	if n.DecodeTokens < 0 {
		return nil, fmt.Errorf("helixpipe: decode decode_tokens must be positive, got %d", n.DecodeTokens)
	}
	if n.Sessions == 0 {
		n.Sessions = 4
	}
	if n.Sessions < 0 {
		return nil, fmt.Errorf("helixpipe: decode sessions must be positive, got %d", n.Sessions)
	}
	if n.GPUs == 0 {
		n.GPUs = 8
	}
	if n.GPUs < 0 {
		return nil, fmt.Errorf("helixpipe: decode gpus must be positive, got %d", n.GPUs)
	}
	mc, ok := ModelByName(parent.Model)
	if !ok {
		return nil, fmt.Errorf("helixpipe: unknown model %q (presets: %s)",
			parent.Model, strings.Join(ModelNames(), ", "))
	}
	if n.MLA {
		if n.KVHeads > 0 {
			return nil, fmt.Errorf("helixpipe: decode mla uses one shared latent; drop kv_heads")
		}
		if n.LatentDim == 0 {
			n.LatentDim = 512
		}
		if n.LatentDim < 0 {
			return nil, fmt.Errorf("helixpipe: decode latent_dim must be positive, got %d", n.LatentDim)
		}
	} else {
		if n.LatentDim != 0 {
			return nil, fmt.Errorf("helixpipe: decode latent_dim requires mla")
		}
		if n.KVHeads == 0 {
			n.KVHeads = mc.Heads
		}
		if n.KVHeads < 0 {
			return nil, fmt.Errorf("helixpipe: decode kv_heads must be positive, got %d", n.KVHeads)
		}
		if mc.Heads%n.KVHeads != 0 {
			return nil, fmt.Errorf("helixpipe: decode kv_heads (%d) must divide the model's %d query heads",
				n.KVHeads, mc.Heads)
		}
	}
	switch n.Objective {
	case "":
		n.Objective = DecodeObjectiveLatencyPerToken
	case DecodeObjectiveLatencyPerToken, DecodeObjectiveThroughput:
	default:
		return nil, fmt.Errorf("helixpipe: unknown decode objective %q (want %q or %q)",
			n.Objective, DecodeObjectiveLatencyPerToken, DecodeObjectiveThroughput)
	}
	if n.BudgetGB < 0 {
		return nil, fmt.Errorf("helixpipe: decode budget_gb must be non-negative, got %g", n.BudgetGB)
	}
	for _, v := range n.KVP {
		if v <= 0 {
			return nil, fmt.Errorf("helixpipe: decode kvp values must be positive, got %d", v)
		}
	}
	for _, v := range n.TPA {
		if v <= 0 {
			return nil, fmt.Errorf("helixpipe: decode tpa values must be positive, got %d", v)
		}
	}
	return &n, nil
}

// SpecOutput selects what a command-line tool emits for the spec's run.
type SpecOutput struct {
	// JSON emits machine-readable reports on stdout.
	JSON bool `json:"json,omitempty"`
	// CSV also writes rows to this path.
	CSV string `json:"csv,omitempty"`
	// Timeline prints an ASCII timeline per report (forces tracing).
	Timeline bool `json:"timeline,omitempty"`
	// SVG writes an SVG timeline per report under this path (forces
	// tracing).
	SVG string `json:"svg,omitempty"`
	// Perfetto writes a Chrome/Perfetto trace-event JSON file of every
	// traced cell to this path (forces tracing); load it in
	// ui.perfetto.dev.
	Perfetto string `json:"perfetto,omitempty"`
}

// ExperimentSpec is the serializable description of one experiment: every
// input a run needs, and nothing session-internal. The zero value of every
// optional field means "the default" — Resolved returns a copy with the
// defaults filled in, which re-resolves to an identical RunSet (that is what
// the command-line tools' -emit-spec writes).
type ExperimentSpec struct {
	// Model is a model preset name ("1.3B", "3B", "7B", "13B", "tiny").
	Model string `json:"model"`
	// Cluster is a flat cost-model preset ("H20", "A800"), a topology preset
	// ("DGX-A800x4", ...), or a path to a topology JSON file.
	Cluster string `json:"cluster"`
	// SeqLen is the fixed sequence length (default 131072). With a workload
	// it only seeds the workload's defaults.
	SeqLen int `json:"seq_len,omitempty"`
	// Stages is the pipeline size p (default 8).
	Stages int `json:"stages,omitempty"`
	// MicroBatchSize is the micro-batch size b (default 1).
	MicroBatchSize int `json:"micro_batch_size,omitempty"`
	// MicroBatches is the micro-batch count m; 0 means the paper default
	// m = 2p, recomputed per sweep cell.
	MicroBatches int `json:"micro_batches,omitempty"`
	// MemoryBudgetGB is the per-GPU activation budget handed to budget-aware
	// schedules; 0 keeps the cluster-derived default.
	MemoryBudgetGB float64 `json:"memory_budget_gb,omitempty"`
	// Methods are the schedules to run; "all" or empty means every
	// registered method.
	Methods []string `json:"methods,omitempty"`
	// Engine runs the plans: "sim" (default) or "numeric".
	Engine string `json:"engine,omitempty"`
	// Seed drives the numeric engine's init and data generation.
	Seed uint64 `json:"seed,omitempty"`
	// Trace forces simulator tracing even without timeline output.
	Trace bool `json:"trace,omitempty"`
	// Helix pins the HelixPipe build options.
	Helix *SpecHelix `json:"helix,omitempty"`
	// Workload is an optional variable-length workload; while set it governs
	// the micro-batch geometry.
	Workload *SpecWorkload `json:"workload,omitempty"`
	// Placement names a stage-placement strategy searched per method on a
	// topology cluster ("contiguous", "roundrobin", "greedy").
	Placement string `json:"placement,omitempty"`
	// PlacementSeed drives the greedy placement search (default 1).
	PlacementSeed uint64 `json:"placement_seed,omitempty"`
	// Perturb injects faults in the -perturb flag syntax, e.g.
	// "slow=3x2.0,link=ibx0.5,jitter=0.05,seed=7". Requires a topology
	// cluster.
	Perturb string `json:"perturb,omitempty"`
	// Sweep turns the run into a grid; mutually exclusive with Tune.
	Sweep *SpecSweep `json:"sweep,omitempty"`
	// Tune turns the run into an autotuner search; mutually exclusive with
	// Sweep.
	Tune *SpecTune `json:"tune,omitempty"`
	// Fleet turns the run into a shared-cluster job-stream simulation;
	// mutually exclusive with Sweep and Tune, requires a topology cluster.
	Fleet *SpecFleet `json:"fleet,omitempty"`
	// Decode turns the run into an interactive-decoding KVP x TPA search;
	// mutually exclusive with Sweep, Tune, Fleet and Workload.
	Decode *SpecDecode `json:"decode,omitempty"`
	// NoCache disables the report cache: every cell simulates, even exact
	// duplicates (maps to WithoutReportCache).
	NoCache bool `json:"no_cache,omitempty"`
	// Output selects what the command-line tools emit.
	Output *SpecOutput `json:"output,omitempty"`
}

// RunCell is one (method, seqlen, stages) cell of a resolved RunSet.
type RunCell struct {
	// Method is the pipeline parallelism of the cell.
	Method Method `json:"method"`
	// SeqLen and Stages are the cell's geometry.
	SeqLen int `json:"seq_len"`
	Stages int `json:"stages"`
}

// RunSet is the resolved execution plan of a spec: what Session.Execute
// will run, in order. Two specs that resolve to equal RunSets describe the
// same experiment — that is the reproducibility contract behind -emit-spec.
type RunSet struct {
	// Kind is RunKindRun, RunKindSweep or RunKindTune.
	Kind string `json:"kind"`
	// Engine names the engine the cells run on ("sim" or "numeric").
	Engine string `json:"engine"`
	// Seed is the numeric engine's init/data seed.
	Seed uint64 `json:"seed,omitempty"`
	// Placement and PlacementSeed drive the per-method placement search of
	// topology runs ("" keeps the contiguous default).
	Placement     string `json:"placement,omitempty"`
	PlacementSeed uint64 `json:"placement_seed,omitempty"`
	// Cells enumerates the run's cells in deterministic grid order
	// (seqlen-major, then stages, then method). Empty on tune and fleet
	// runs.
	Cells []RunCell `json:"cells,omitempty"`
	// Tune is the fully-resolved autotuner spec of a RunKindTune run.
	Tune *TuneSpec `json:"tune,omitempty"`
	// Fleet is the materialized job stream of a RunKindFleet run: every
	// arrival drawn, every template resolved into a single-method job spec.
	// Run it with Session.Fleet.
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Decode is the fully-resolved decoding scenario of a RunKindDecode
	// run. Run it with Session.Decode.
	Decode *DecodeSpec `json:"decode,omitempty"`
}

// ParseSpec decodes and strictly validates an ExperimentSpec from JSON:
// unknown fields are errors, so typos in a spec file fail loudly instead of
// silently running the default.
func ParseSpec(r io.Reader) (*ExperimentSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	spec := &ExperimentSpec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("helixpipe: invalid experiment spec: %w", err)
	}
	// A second document in the stream is a malformed spec, not extra input.
	if dec.More() {
		return nil, fmt.Errorf("helixpipe: invalid experiment spec: trailing data after the spec object")
	}
	return spec, nil
}

// ParseSpecFile reads an ExperimentSpec from a JSON file.
func ParseSpecFile(path string) (*ExperimentSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// WriteSpec writes the spec as indented JSON. WriteSpec and ParseSpec
// round-trip: every field survives Write -> Parse -> Resolve.
func WriteSpec(w io.Writer, spec *ExperimentSpec) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spec)
}

// WriteSpecFile writes the spec as an indented JSON file.
func WriteSpecFile(path string, spec *ExperimentSpec) error {
	var buf bytes.Buffer
	if err := WriteSpec(&buf, spec); err != nil {
		return err
	}
	return os.WriteFile(path, buf.Bytes(), 0o644)
}

// Resolved returns a copy of the spec with every default filled in and
// every name canonicalized (method names through the registry, "all"
// expanded, workload and tune axes made explicit). The result re-resolves
// to a RunSet identical to the original spec's — it is what the
// command-line tools' -emit-spec writes for exact reproduction.
//
// Resolved accepts advisory oddities without failing — notably `trace`
// with no span-consuming output, where spans are recorded and then
// dropped; Notes reports them and the command-line tools print them to
// stderr.
func (s *ExperimentSpec) Resolved() (*ExperimentSpec, error) {
	n, err := s.normalized()
	if err != nil {
		return nil, err
	}
	// Resolve the normalized copy so -emit-spec never writes a spec that
	// fails later: name resolution above is necessary but a spec can still
	// be geometrically unbuildable.
	if _, _, err := n.Resolve(); err != nil {
		return nil, err
	}
	return n, nil
}

// Notes returns advisory notes about a valid spec: configurations that are
// accepted but probably not what the author meant. Notes never fail a
// resolve; the command-line tools print them to stderr. An unresolvable
// spec has no notes — resolution errors out first and says why.
func (s *ExperimentSpec) Notes() []string {
	n, err := s.normalized()
	if err != nil {
		return nil
	}
	var notes []string
	spansConsumed := n.Output != nil &&
		(n.Output.Timeline || n.Output.SVG != "" || n.Output.Perfetto != "")
	if n.Trace && !spansConsumed {
		notes = append(notes,
			"trace is set but no timeline/svg/perfetto output consumes the spans; they are recorded per cell and dropped")
	}
	return notes
}

// Resolve validates the spec eagerly and returns the Session it configures
// plus the RunSet describing what Session.Execute will run. Every error a
// run could hit from bad configuration — unknown names, impossible
// geometry, a placement without a topology — surfaces here, before anything
// executes.
func (s *ExperimentSpec) Resolve() (*Session, RunSet, error) {
	n, err := s.normalized()
	if err != nil {
		return nil, RunSet{}, err
	}
	p, err := n.resolveParts()
	if err != nil {
		return nil, RunSet{}, err
	}
	session, err := NewSession(p.model, p.cluster, p.options...)
	if err != nil {
		return nil, RunSet{}, err
	}
	rs, err := n.runSet(p)
	if err != nil {
		return nil, RunSet{}, err
	}
	return session, rs, nil
}

// normalized deep-copies the spec, fills defaults and canonicalizes names.
// It is idempotent: normalized(normalized(s)) == normalized(s), which makes
// the -emit-spec round trip exact.
func (s *ExperimentSpec) normalized() (*ExperimentSpec, error) {
	n := *s
	if n.Model == "" {
		return nil, fmt.Errorf("helixpipe: spec names no model (presets: %s)",
			strings.Join(ModelNames(), ", "))
	}
	if n.Cluster == "" {
		return nil, fmt.Errorf("helixpipe: spec names no cluster; the available clusters are:\n%s", ClusterListing())
	}
	if n.SeqLen == 0 {
		n.SeqLen = 131072
	}
	if n.Stages == 0 {
		n.Stages = 8
	}
	if n.MicroBatchSize == 0 {
		n.MicroBatchSize = 1
	}
	// MicroBatches stays 0 for the paper default m = 2p: pinning it here
	// would freeze one stage count's m across sweep cells.
	switch n.Engine {
	case "":
		n.Engine = SpecEngineSim
	case SpecEngineSim, SpecEngineNumeric:
	default:
		return nil, fmt.Errorf("helixpipe: unknown engine %q (known: %s, %s)",
			n.Engine, SpecEngineSim, SpecEngineNumeric)
	}
	methods, err := resolveSpecMethods(n.Methods)
	if err != nil {
		return nil, err
	}
	n.Methods = methods
	if n.Helix != nil {
		h := *n.Helix
		if h.Recompute != nil {
			r := *h.Recompute
			h.Recompute = &r
		}
		n.Helix = &h
	}
	if n.Workload != nil {
		w := *n.Workload
		w.Shapes = append([]Shape(nil), w.Shapes...)
		if len(w.Shapes) == 0 {
			if w.Dist == "" {
				return nil, fmt.Errorf("helixpipe: workload needs a dist or explicit shapes")
			}
			if _, ok := LengthDistByName(w.Dist); !ok {
				return nil, fmt.Errorf("helixpipe: unknown length distribution %q (uniform, bimodal, longtail)", w.Dist)
			}
			if w.Docs == 0 {
				w.Docs = 64
			}
			if w.MaxSeq == 0 {
				w.MaxSeq = n.SeqLen
			}
			if w.MinSeq == 0 {
				w.MinSeq = max(w.MaxSeq/16, 1)
			}
			if w.Seed == 0 {
				w.Seed = 42
			}
		}
		if w.Order != "" {
			if _, ok := MBOrderByName(w.Order); !ok {
				return nil, fmt.Errorf("helixpipe: unknown micro-batch order %q (known: %v)",
					w.Order, model.Orders())
			}
		}
		n.Workload = &w
	}
	if n.Placement != "" {
		if _, ok := cluster.StrategyByName(n.Placement); !ok {
			return nil, fmt.Errorf("helixpipe: unknown placement strategy %q (known: %s)",
				n.Placement, strings.Join(PlacementStrategies(), ", "))
		}
		if n.PlacementSeed == 0 {
			n.PlacementSeed = 1
		}
	}
	if n.Perturb != "" {
		if _, err := ParsePerturb(n.Perturb); err != nil {
			return nil, err
		}
	}
	if n.Sweep != nil && n.Tune != nil {
		return nil, fmt.Errorf("helixpipe: spec has both sweep axes and a tune grid; pick one")
	}
	if n.Decode != nil {
		if n.Sweep != nil || n.Tune != nil || n.Fleet != nil {
			return nil, fmt.Errorf("helixpipe: a decode spec cannot also sweep, tune or run a fleet; pick one")
		}
		if n.Workload != nil {
			return nil, fmt.Errorf("helixpipe: a decode spec generates per-token work from its context; drop the workload section")
		}
		if n.Engine != SpecEngineSim {
			return nil, fmt.Errorf("helixpipe: a decode run prices shardings on the simulator; engine must be %q", SpecEngineSim)
		}
		d, err := n.Decode.normalized(&n)
		if err != nil {
			return nil, err
		}
		n.Decode = d
	}
	if n.Fleet != nil {
		if n.Sweep != nil || n.Tune != nil {
			return nil, fmt.Errorf("helixpipe: a fleet spec cannot also sweep or tune; pick one")
		}
		if n.Engine != SpecEngineSim {
			return nil, fmt.Errorf("helixpipe: a fleet run prices jobs on the simulator; engine must be %q", SpecEngineSim)
		}
		f, err := n.Fleet.normalized(&n)
		if err != nil {
			return nil, err
		}
		n.Fleet = f
	}
	if n.Sweep != nil {
		sw := *n.Sweep
		sw.SeqLens = append([]int(nil), sw.SeqLens...)
		sw.Stages = append([]int(nil), sw.Stages...)
		if len(sw.SeqLens) > 0 && n.Workload != nil {
			return nil, fmt.Errorf("helixpipe: sweeping sequence lengths would discard the spec's workload; drop the workload or the sweep's seq_lens axis")
		}
		if len(sw.SeqLens) == 0 && n.Workload == nil {
			// A workload spec keeps the axis empty: the workload governs the
			// shapes, only stages sweep.
			sw.SeqLens = []int{n.SeqLen}
		}
		if len(sw.Stages) == 0 {
			sw.Stages = []int{n.Stages}
		}
		n.Sweep = &sw
	}
	if n.Tune != nil {
		t := *n.Tune
		t.SeqLens = append([]int(nil), t.SeqLens...)
		t.Stages = append([]int(nil), t.Stages...)
		t.MicroBatches = append([]int(nil), t.MicroBatches...)
		t.MicroBatchSizes = append([]int(nil), t.MicroBatchSizes...)
		t.Placements = append([]string(nil), t.Placements...)
		t.Orders = append([]string(nil), t.Orders...)
		if len(t.SeqLens) == 0 && n.Workload == nil {
			t.SeqLens = []int{n.SeqLen}
		}
		if len(t.Stages) == 0 {
			t.Stages = []int{n.Stages}
		}
		if len(t.MicroBatchSizes) == 0 {
			t.MicroBatchSizes = []int{n.MicroBatchSize}
		}
		for _, o := range t.Orders {
			if _, ok := MBOrderByName(o); !ok {
				return nil, fmt.Errorf("helixpipe: unknown micro-batch order %q in tune grid (known: %v)",
					o, model.Orders())
			}
		}
		if len(t.Orders) > 0 && n.Workload == nil {
			return nil, fmt.Errorf("helixpipe: tune orders given without a workload to reorder")
		}
		for _, strategy := range t.Placements {
			if _, ok := cluster.StrategyByName(strategy); !ok {
				return nil, fmt.Errorf("helixpipe: unknown placement strategy %q in tune grid (known: %s)",
					strategy, strings.Join(PlacementStrategies(), ", "))
			}
		}
		if t.Objective == "" {
			t.Objective = TuneObjectiveThroughput
		}
		switch t.Objective {
		case TuneObjectiveThroughput, TuneObjectiveLatencyPerToken:
		default:
			return nil, fmt.Errorf("helixpipe: unknown tune objective %q (known: %s, %s)",
				t.Objective, TuneObjectiveThroughput, TuneObjectiveLatencyPerToken)
		}
		if t.Budget < 0 {
			return nil, fmt.Errorf("helixpipe: tune budget must be non-negative, got %g", t.Budget)
		}
		n.Tune = &t
	}
	if n.Output != nil {
		o := *n.Output
		n.Output = &o
	}
	return &n, nil
}

// resolveSpecMethods canonicalizes a spec's method names through the
// registry: "all" (or an empty list) expands to every registered method,
// anything unknown reports the method listing.
func resolveSpecMethods(names []string) ([]string, error) {
	if len(names) == 0 {
		names = []string{"all"}
	}
	var out []string
	for _, name := range names {
		if strings.EqualFold(name, "all") {
			for _, m := range Methods() {
				out = append(out, string(m))
			}
			continue
		}
		m, ok := LookupMethod(name)
		if !ok {
			return nil, fmt.Errorf("helixpipe: unknown method %q; the registered methods are:\n%s",
				name, MethodListing())
		}
		out = append(out, string(m))
	}
	return out, nil
}

// specParts carries the resolved ingredients of a normalized spec.
type specParts struct {
	model      ModelConfig
	cluster    ClusterSpec
	topo       *ClusterTopology
	batch      BatchSpec // empty Shapes on fixed-shape specs
	options    []Option
	wantsTrace bool
}

// resolveParts resolves the normalized spec's names into concrete
// configuration and the session option list.
func (s *ExperimentSpec) resolveParts() (*specParts, error) {
	p := &specParts{}
	mc, ok := ModelByName(s.Model)
	if !ok {
		return nil, fmt.Errorf("helixpipe: unknown model %q (presets: %s)",
			s.Model, strings.Join(ModelNames(), ", "))
	}
	p.model = mc
	cl, topo, err := ResolveCluster(s.Cluster)
	if err != nil {
		return nil, err
	}
	p.cluster, p.topo = cl, topo

	p.options = []Option{
		WithSeqLen(s.SeqLen),
		WithStages(s.Stages),
		WithMicroBatchSize(s.MicroBatchSize),
	}
	if s.MicroBatches > 0 {
		p.options = append(p.options, WithMicroBatches(s.MicroBatches))
	}
	if s.MemoryBudgetGB > 0 {
		p.options = append(p.options, WithMemoryBudget(int64(s.MemoryBudgetGB*float64(1<<30))))
	}
	if s.Helix != nil {
		opt := HelixOptions{Fold: s.Helix.Fold}
		if s.Helix.Recompute != nil {
			opt.Recompute = *s.Helix.Recompute
		}
		p.options = append(p.options, WithHelixOptions(opt))
	}
	if topo != nil {
		p.options = append(p.options, WithCluster(*topo))
	}
	if s.Placement != "" && topo == nil {
		return nil, fmt.Errorf("helixpipe: placement %q requires a topology cluster (e.g. DGX-A800x4), not the flat %s",
			s.Placement, s.Cluster)
	}
	if s.Perturb != "" {
		if topo == nil {
			return nil, fmt.Errorf("helixpipe: perturbation requires a topology cluster (e.g. DGX-A800x4), not the flat %s",
				s.Cluster)
		}
		perturb, err := ParsePerturb(s.Perturb)
		if err != nil {
			return nil, err
		}
		p.options = append(p.options, WithPerturb(perturb))
	}
	if s.Workload != nil {
		batch, err := s.Workload.build()
		if err != nil {
			return nil, err
		}
		p.batch = batch
		p.options = append(p.options, WithWorkload(batch))
	}
	p.wantsTrace = s.Trace || (s.Output != nil && (s.Output.Timeline || s.Output.SVG != "" || s.Output.Perfetto != ""))
	if p.wantsTrace {
		p.options = append(p.options, WithTrace())
	}
	if s.NoCache {
		p.options = append(p.options, WithoutReportCache())
	}
	return p, nil
}

// build materializes the workload description into a per-micro-batch shape
// list: explicit shapes verbatim, else sample + pack + order.
func (w *SpecWorkload) build() (BatchSpec, error) {
	var batch BatchSpec
	if len(w.Shapes) > 0 {
		batch = BatchSpec{Shapes: append([]Shape(nil), w.Shapes...)}
	} else {
		dist, _ := LengthDistByName(w.Dist)
		var err error
		batch, err = SyntheticWorkload(dist, w.Docs, w.MinSeq, w.MaxSeq, int64(w.MaxSeq), w.Seed)
		if err != nil {
			return BatchSpec{}, err
		}
	}
	if w.Order != "" {
		order, _ := MBOrderByName(w.Order)
		return batch.Ordered(order)
	}
	return batch, nil
}

// specMethods converts the normalized method names.
func (s *ExperimentSpec) specMethods() []Method {
	out := make([]Method, len(s.Methods))
	for i, name := range s.Methods {
		out[i] = Method(name)
	}
	return out
}

// runSet assembles the execution plan of a normalized spec.
func (s *ExperimentSpec) runSet(p *specParts) (RunSet, error) {
	rs := RunSet{
		Kind:          RunKindRun,
		Engine:        s.Engine,
		Seed:          s.Seed,
		Placement:     s.Placement,
		PlacementSeed: s.PlacementSeed,
	}
	if s.Decode != nil {
		rs.Kind = RunKindDecode
		ds, err := s.buildDecodeSpec(p)
		if err != nil {
			return RunSet{}, err
		}
		rs.Decode = ds
		return rs, nil
	}
	if s.Fleet != nil {
		rs.Kind = RunKindFleet
		fs, err := s.buildFleetSpec(p)
		if err != nil {
			return RunSet{}, err
		}
		rs.Fleet = fs
		return rs, nil
	}
	if s.Tune != nil {
		if s.Engine == SpecEngineNumeric {
			return RunSet{}, fmt.Errorf("helixpipe: the tune grid searches simulated configurations; engine must be %q", SpecEngineSim)
		}
		rs.Kind = RunKindTune
		rs.Tune = s.tuneSpec(p)
		// Validate the assembled grid eagerly: a tune spec that would die
		// inside Autotune (placements without a topology, non-positive
		// axes) must fail Resolve, or -emit-spec would write an unrunnable
		// spec.
		if err := rs.Tune.Validate(); err != nil {
			return RunSet{}, fmt.Errorf("helixpipe: %w", err)
		}
		return rs, nil
	}
	seqLens, stages := []int{s.SeqLen}, []int{s.Stages}
	if s.Sweep != nil {
		rs.Kind = RunKindSweep
		stages = s.Sweep.Stages
		if len(s.Sweep.SeqLens) > 0 {
			seqLens = s.Sweep.SeqLens
		}
		// A workload sweep keeps SeqLens empty; its cells carry the spec's
		// seq_len as a label only.
	}
	for _, seq := range seqLens {
		for _, pp := range stages {
			for _, m := range s.specMethods() {
				rs.Cells = append(rs.Cells, RunCell{Method: m, SeqLen: seq, Stages: pp})
			}
		}
	}
	return rs, nil
}

// tuneSpec assembles the autotuner spec of a tune-kind run.
func (s *ExperimentSpec) tuneSpec(p *specParts) *TuneSpec {
	t := s.Tune
	ts := &TuneSpec{
		Methods:           s.specMethods(),
		SeqLens:           append([]int(nil), t.SeqLens...),
		Stages:            append([]int(nil), t.Stages...),
		MicroBatches:      append([]int(nil), t.MicroBatches...),
		MicroBatchSizes:   append([]int(nil), t.MicroBatchSizes...),
		MemoryBudgetBytes: int64(t.BudgetGB * float64(1<<30)),
		Workers:           t.Workers,
		Placements:        append([]string(nil), t.Placements...),
		Orders:            append([]string(nil), t.Orders...),
		Objective:         t.Objective,
		Budget:            t.Budget,
		Cluster:           p.topo,
	}
	if s.Perturb != "" {
		perturb, _ := ParsePerturb(s.Perturb) // validated by normalized
		ts.Perturb = &perturb
	}
	if s.Workload != nil {
		name := s.Workload.Dist
		if name == "" {
			name = "workload"
		}
		ts.Workloads = []TuneWorkload{{Name: name, Batch: p.batch}}
	}
	return ts
}
