package helixpipe

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// collectSink gathers events behind a mutex (sinks must be
// concurrency-safe; streams emit from worker goroutines).
type collectSink struct {
	mu     sync.Mutex
	events []obs.Event
}

func (c *collectSink) Emit(e obs.Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, e)
}

func (c *collectSink) byKind(k obs.EventKind) []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []obs.Event
	for _, e := range c.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// telemetrySweep is the duplicate-bearing grid the telemetry tests share:
// 2 methods x (2+1 seqlens) x 2 stages = 12 cells, 4 exact duplicates.
var telemetrySweep = Sweep{
	Methods: []Method{"1F1B", "HelixPipe"},
	SeqLens: []int{8192, 8192, 16384},
	Stages:  []int{2, 4},
}

func TestTelemetryAbsentOnUnobservedSessions(t *testing.T) {
	s, err := NewSession(Model3B(), A800Cluster())
	if err != nil {
		t.Fatal(err)
	}
	reports, err := s.Sweep(telemetrySweep)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reports {
		if r.Telemetry != nil {
			t.Fatalf("report %d carries telemetry on an unobserved session", i)
		}
	}
}

func TestTelemetryStampedOnObservedSessions(t *testing.T) {
	base, err := NewSession(Model3B(), A800Cluster())
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	observed, err := base.With(WithEventSink(sink), WithReportCache(NewReportCache()))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := observed.Sweep(telemetrySweep)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i, r := range reports {
		tel := r.Telemetry
		if tel == nil {
			t.Fatalf("report %d has no telemetry on an observed session", i)
		}
		if tel.WallSeconds <= 0 {
			t.Errorf("report %d: wall_seconds = %g, want > 0", i, tel.WallSeconds)
		}
		if tel.CacheHit {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("%d cache-hit reports, want 4 (the duplicate cells)", hits)
	}

	// The provenance block is the only difference from an unobserved run:
	// stripping it restores byte-identity.
	plain, err := base.Sweep(telemetrySweep)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	StripTelemetry(reports)
	if err := WriteReportsJSON(&a, reports); err != nil {
		t.Fatal(err)
	}
	if err := WriteReportsJSON(&b, plain); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("stripped observed reports differ from unobserved reports")
	}
}

func TestEventStreamShape(t *testing.T) {
	base, err := NewSession(Model3B(), A800Cluster())
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	s, err := base.With(WithEventSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sweep(telemetrySweep); err != nil {
		t.Fatal(err)
	}
	cells := 12
	started := sink.byKind(obs.CellStarted)
	finished := sink.byKind(obs.CellFinished)
	if len(started) != cells || len(finished) != cells {
		t.Fatalf("got %d started / %d finished events, want %d each", len(started), len(finished), cells)
	}
	seen := map[int]bool{}
	for _, e := range finished {
		if e.Total != cells {
			t.Errorf("event total = %d, want %d", e.Total, cells)
		}
		if e.Label == "" {
			t.Error("finished event has no label")
		}
		if e.Duration <= 0 {
			t.Errorf("cell %d: duration %v, want > 0", e.Index, e.Duration)
		}
		if e.Worker < 0 {
			t.Errorf("cell %d: worker id %d", e.Index, e.Worker)
		}
		seen[e.Index] = true
	}
	if len(seen) != cells {
		t.Errorf("finished events cover %d distinct cells, want %d", len(seen), cells)
	}
	hits := 0
	for _, e := range finished {
		if e.CacheHit {
			hits++
		}
	}
	if hits != 4 {
		t.Errorf("%d cache-hit events, want 4", hits)
	}
}

// TestWritePromAfterSweep is the acceptance check: after a 216-cell sweep
// through a cache bound to a fresh registry, the Prometheus snapshot reports
// exactly the duplicate-cell count as hits.
func TestWritePromAfterSweep(t *testing.T) {
	base, err := NewSession(TinyModel(), H20Cluster(), WithSeqLen(8), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	// 2 methods x 54 seqlen entries x 2 stages = 216 cells; only 3 distinct
	// seqlens, so 2 x 3 x 2 = 12 unique cells and 204 duplicates.
	seqLens := make([]int, 0, 54)
	for i := 0; i < 18; i++ {
		seqLens = append(seqLens, 8, 16, 32)
	}
	sw := Sweep{Methods: []Method{Method1F1B, MethodHelix}, SeqLens: seqLens, Stages: []int{2, 4}}

	reg := obs.NewRegistry()
	cache := NewReportCacheInRegistry(reg)
	s, err := base.With(WithReportCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	reports, err := s.Sweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 216 {
		t.Fatalf("swept %d cells, want 216", len(reports))
	}
	hits, misses := cache.Stats()
	if hits != 204 || misses != 12 {
		t.Fatalf("cache stats = %d hits / %d misses, want 204 / 12", hits, misses)
	}

	var b strings.Builder
	if err := obs.WriteProm(&b, reg); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE helix_cache_hits_total counter\n",
		"helix_cache_hits_total 204\n",
		"helix_cache_misses_total 12\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus snapshot missing %q:\n%s", want, out)
		}
	}
	// The cached-bytes gauge tracks the stored reports.
	cs := cache.StatsDetail()
	if cs.Entries != 12 {
		t.Errorf("cache entries = %d, want 12", cs.Entries)
	}
	if cs.Bytes <= 0 {
		t.Errorf("cached bytes = %d, want > 0", cs.Bytes)
	}
	if !strings.Contains(out, "# TYPE helix_cache_bytes gauge\n") {
		t.Errorf("prometheus snapshot missing the cache bytes gauge:\n%s", out)
	}
}

// TestCacheSingleflightWaitCounted pins the waiter accounting: a second
// caller arriving while the first still computes records one singleflight
// wait (and one hit).
func TestCacheSingleflightWaitCounted(t *testing.T) {
	cache := NewReportCacheInRegistry(obs.NewRegistry())
	release := make(chan struct{})
	done := make(chan struct{}, 2)
	go func() {
		cache.Do("k", func() (*Report, error) {
			<-release
			return &Report{Method: "1F1B"}, nil
		})
		done <- struct{}{}
	}()
	// Wait for the first caller to claim the entry, then pile on a second.
	for cache.Len() == 0 {
		time.Sleep(time.Millisecond)
	}
	go func() {
		cache.Do("k", func() (*Report, error) { return &Report{Method: "1F1B"}, nil })
		done <- struct{}{}
	}()
	for {
		if cs := cache.StatsDetail(); cs.SingleflightWaits == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-done
	<-done
	cs := cache.StatsDetail()
	if cs.Hits != 1 || cs.Misses != 1 || cs.SingleflightWaits != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 singleflight wait", cs)
	}
}

func TestReportCSVTelemetryColumns(t *testing.T) {
	header := ReportCSVHeader()
	if header[len(header)-2] != "wall_seconds" || header[len(header)-1] != "cache_hit" {
		t.Fatalf("CSV header missing telemetry columns: %v", header)
	}
	s, err := NewSession(Model3B(), A800Cluster(), WithSeqLen(8192), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.Simulate(Method1F1B)
	if err != nil {
		t.Fatal(err)
	}
	row := r.CSVRow()
	if len(row) != len(header) {
		t.Fatalf("row has %d fields, header %d", len(row), len(header))
	}
	// Unobserved reports leave the telemetry cells empty.
	if row[len(row)-2] != "" || row[len(row)-1] != "" {
		t.Errorf("unobserved report filled telemetry cells: %v", row[len(row)-2:])
	}
	r.Telemetry = &ReportTelemetry{WallSeconds: 0.25, CacheHit: true}
	row = r.CSVRow()
	if row[len(row)-2] != "0.25" || row[len(row)-1] != "true" {
		t.Errorf("telemetry cells = %v, want [0.25 true]", row[len(row)-2:])
	}
}
