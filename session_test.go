package helixpipe

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// tinySession returns a session every registered method can run: the tiny
// model on two stages with eight micro batches (a multiple of every
// schedule's loop size).
func tinySession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	base := []Option{WithSeqLen(8), WithStages(2), WithMicroBatches(8)}
	s, err := NewSession(TinyModel(), H20Cluster(), append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionValidation checks that NewSession validates eagerly.
func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(TinyModel(), H20Cluster()); err == nil {
		t.Error("tiny model on the default 8 stages must fail (4 layers)")
	}
	if _, err := NewSession(TinyModel(), H20Cluster(), WithStages(2), WithSeqLen(0)); err == nil {
		t.Error("zero sequence length must fail")
	}
	if _, err := NewSession(TinyModel(), H20Cluster(), WithStages(2), WithMicroBatches(-1)); err == nil {
		t.Error("negative micro batches must fail")
	}
	if _, err := NewSession(TinyModel(), H20Cluster(), WithStages(2),
		WithHelixOptions(HelixOptions{Fold: 3})); err == nil {
		t.Error("fold 3 must fail")
	}
	if _, err := NewSession(ModelConfig{}, H20Cluster(), WithStages(2)); err == nil {
		t.Error("zero model must fail")
	}
	s := tinySession(t)
	if s.MicroBatches() != 8 || s.Stages() != 2 || s.SeqLen() != 8 {
		t.Errorf("session geometry wrong: %d stages, %d mb, %d seq",
			s.Stages(), s.MicroBatches(), s.SeqLen())
	}
	// Default m = 2p tracks stage overrides in With; explicit m is kept.
	d, err := NewSession(TinyModel(), H20Cluster(), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.MicroBatches() != 4 {
		t.Errorf("default micro batches: want 2p=4, got %d", d.MicroBatches())
	}
	d2, err := d.With(WithStages(4))
	if err != nil {
		t.Fatal(err)
	}
	if d2.MicroBatches() != 8 {
		t.Errorf("derived default micro batches: want 2p=8, got %d", d2.MicroBatches())
	}
	if d.Stages() != 2 {
		t.Error("With must not mutate the receiver")
	}
}

// TestSessionRoundTrip runs every registered method through both engines on
// a tiny model and checks that each Report's JSON survives an unmarshal
// round-trip.
func TestSessionRoundTrip(t *testing.T) {
	s := tinySession(t)
	if len(Methods()) < 9 {
		t.Fatalf("registry incomplete: %v", Methods())
	}
	for _, method := range Methods() {
		engines := []Engine{s.SimEngine(), s.NumericEngine(7)}
		for _, engine := range engines {
			report, err := s.Run(engine, method)
			if err != nil {
				t.Fatalf("%s/%s: %v", method, engine.Name(), err)
			}
			if report.Method != method {
				t.Errorf("%s/%s: report names method %s", method, engine.Name(), report.Method)
			}
			if report.Engine != engine.Name() {
				t.Errorf("%s: engine label %q", method, report.Engine)
			}
			switch engine.Name() {
			case EngineSim:
				if report.Sim == nil || report.Sim.IterationSeconds <= 0 {
					t.Errorf("%s/sim: missing or non-positive sim metrics", method)
				}
				if report.Numeric != nil {
					t.Errorf("%s/sim: unexpected numeric metrics", method)
				}
			case EngineNumeric:
				if report.Numeric == nil || report.Numeric.Loss <= 0 {
					t.Errorf("%s/numeric: missing or non-positive loss", method)
				}
				if report.NumericResult() == nil || report.NumericResult().Grads == nil {
					t.Errorf("%s/numeric: raw result not retained", method)
				}
			}

			// JSON round trip: marshal, unmarshal, re-marshal, compare.
			first, err := json.Marshal(report)
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", method, engine.Name(), err)
			}
			var decoded Report
			if err := json.Unmarshal(first, &decoded); err != nil {
				t.Fatalf("%s/%s: unmarshal: %v", method, engine.Name(), err)
			}
			second, err := json.Marshal(&decoded)
			if err != nil {
				t.Fatalf("%s/%s: re-marshal: %v", method, engine.Name(), err)
			}
			if !bytes.Equal(first, second) {
				t.Errorf("%s/%s: JSON round trip not stable:\n%s\nvs\n%s",
					method, engine.Name(), first, second)
			}
		}
	}
}

// TestNumericEnginesAgree checks that every method's numeric run produces
// the same loss: the paper's semantics claim through the Session API.
func TestNumericEnginesAgree(t *testing.T) {
	s := tinySession(t)
	var wantLoss float64
	for i, method := range Methods() {
		report, err := s.Run(s.NumericEngine(99), method)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if i == 0 {
			wantLoss = report.Numeric.Loss
			continue
		}
		if report.Numeric.Loss != wantLoss {
			t.Errorf("%s: loss %v differs from %v — schedules must be semantics-preserving",
				method, report.Numeric.Loss, wantLoss)
		}
	}
}

// TestSessionSweep fans a small grid out and checks order and geometry.
func TestSessionSweep(t *testing.T) {
	// No explicit WithMicroBatches: the paper default m = 2p must follow
	// each grid cell's stage count.
	s, err := NewSession(TinyModel(), H20Cluster(), WithSeqLen(8), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{Method1F1B, MethodHelix}
	seqLens := []int{8, 16}
	stages := []int{2, 4}
	reports, err := s.Sweep(Sweep{Methods: methods, SeqLens: seqLens, Stages: stages})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(methods) * len(seqLens) * len(stages); len(reports) != want {
		t.Fatalf("want %d reports, got %d", want, len(reports))
	}
	i := 0
	for _, seq := range seqLens {
		for _, p := range stages {
			for _, m := range methods {
				r := reports[i]
				i++
				if r.Method != m || r.SeqLen != seq || r.Stages != p {
					t.Errorf("report %d: got (%s, seq=%d, p=%d), want (%s, seq=%d, p=%d)",
						i-1, r.Method, r.SeqLen, r.Stages, m, seq, p)
				}
				// Default m = 2p must follow the grid's stage count.
				if r.MicroBatches != 2*p {
					t.Errorf("report %d: micro batches %d, want %d", i-1, r.MicroBatches, 2*p)
				}
			}
		}
	}
	// A grid containing an invalid cell reports the failure but still
	// returns the valid cells.
	reports, err = s.Sweep(Sweep{Methods: methods, Stages: []int{2, 3}})
	if err == nil {
		t.Error("stages=3 does not divide 4 layers: sweep must report it")
	}
	if len(reports) != len(methods) {
		t.Errorf("valid cells must survive a partial failure: got %d reports", len(reports))
	}
}

// failingEngine errors on every run; it stands in for a grid cell whose
// execution (not derivation) fails mid-sweep.
type failingEngine struct{}

func (failingEngine) Name() string { return "failing" }
func (failingEngine) Run(*Plan) (*Report, error) {
	return nil, errors.New("engine down")
}

// TestSweepErrorAggregation pins the contract the autotuner leans on: every
// failing grid point is reported in the joined error, and no failure — at
// derivation or at run time — loses the reports of the other cells.
func TestSweepErrorAggregation(t *testing.T) {
	s, err := NewSession(TinyModel(), H20Cluster(), WithSeqLen(8), WithStages(2))
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{Method1F1B, MethodHelix}

	// Derivation failures: stages 3 does not divide the tiny model's 4
	// layers, twice over, amid two valid stage counts.
	reports, err := s.Sweep(Sweep{Methods: methods, Stages: []int{2, 3, 4}})
	if err == nil {
		t.Fatal("stages=3 cells must surface in the sweep error")
	}
	if want := 2 * len(methods); len(reports) != want {
		t.Fatalf("valid cells lost: got %d reports, want %d", len(reports), want)
	}
	if n := strings.Count(err.Error(), "p=3"); n != len(methods) {
		t.Errorf("joined error names %d p=3 failures, want %d: %v", n, len(methods), err)
	}
	for _, r := range reports {
		if r.Stages != 2 && r.Stages != 4 {
			t.Errorf("report for pruned cell p=%d leaked through", r.Stages)
		}
	}

	// Run failures: an engine that errors on the 16-token cells must not
	// lose the 8-token reports, and grid order must hold for the survivors.
	engineOf := func(cell *Session) Engine {
		if cell.SeqLen() == 16 {
			return failingEngine{}
		}
		return cell.SimEngine()
	}
	reports, err = s.Sweep(Sweep{Methods: methods, SeqLens: []int{8, 16}, Engine: engineOf})
	if err == nil {
		t.Fatal("failing engine cells must surface in the sweep error")
	}
	if len(reports) != len(methods) {
		t.Fatalf("got %d reports, want %d", len(reports), len(methods))
	}
	for i, r := range reports {
		if r.SeqLen != 8 {
			t.Errorf("report %d: seq %d leaked from a failing cell", i, r.SeqLen)
		}
		if r.Method != methods[i] {
			t.Errorf("report %d: method %s breaks grid order", i, r.Method)
		}
	}
}

// TestSessionAutotune checks the autotuner's session front door: spec axes
// default from the session, the frontier is non-empty on the paper's A800
// testbed under a 64GB budget, nothing returned exceeds the budget, and
// memoization keeps cost-model evaluations strictly below the grid size.
func TestSessionAutotune(t *testing.T) {
	s, err := NewSession(Model3B(), A800Cluster(), WithSeqLen(65536), WithStages(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Autotune(TuneSpec{
		SeqLens:           []int{32768, 65536},
		Stages:            []int{2, 4, 8},
		MemoryBudgetBytes: 64 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("expected a non-empty Pareto frontier")
	}
	if res.CostModelEvals >= res.GridSize {
		t.Errorf("memoization ineffective: %d cost evals on a grid of %d",
			res.CostModelEvals, res.GridSize)
	}
	for _, p := range res.Points {
		if p.EstimatedPeakBytes > res.MemoryBudgetBytes || p.PeakBytes > res.MemoryBudgetBytes {
			t.Errorf("%s seq=%d p=%d: peaks (%d est, %d measured) exceed budget %d",
				p.Method, p.SeqLen, p.Stages, p.EstimatedPeakBytes, p.PeakBytes,
				res.MemoryBudgetBytes)
		}
	}

	// Empty axes fall back to the session's geometry.
	res, err = s.Autotune(TuneSpec{Methods: []Method{Method1F1B}})
	if err != nil {
		t.Fatal(err)
	}
	if res.GridSize != 1 || res.Evaluated != 1 {
		t.Fatalf("session-default spec: grid %d evaluated %d, want 1/1", res.GridSize, res.Evaluated)
	}
	p := res.Points[0]
	if p.SeqLen != s.SeqLen() || p.Stages != s.Stages() || p.MicroBatchSize != s.MicroBatchSize() {
		t.Errorf("defaults not taken from session: %+v", p.Candidate)
	}

	// The serialization plumbing round-trips through the root package.
	var buf bytes.Buffer
	if err := WriteTuneResultJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded TuneResult
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.GridSize != res.GridSize {
		t.Error("tune JSON round trip lost the grid size")
	}
	buf.Reset()
	if err := WriteTuneResultCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(buf.String()), "\n"); len(lines) != res.Evaluated+1 {
		t.Errorf("tune CSV rows = %d, want %d", len(lines), res.Evaluated+1)
	}
}

// TestSweepNumericEngine swaps the engine factory for the numeric runtime.
func TestSweepNumericEngine(t *testing.T) {
	s := tinySession(t)
	reports, err := s.Sweep(Sweep{
		Methods: []Method{Method1F1B, MethodHelix},
		Engine:  func(cell *Session) Engine { return cell.NumericEngine(3) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("want 2 reports, got %d", len(reports))
	}
	if reports[0].Numeric == nil || reports[1].Numeric == nil {
		t.Fatal("numeric sweeps must carry numeric metrics")
	}
	if reports[0].Numeric.Loss != reports[1].Numeric.Loss {
		t.Error("1F1B and HelixPipe must train identically")
	}
}

// TestReportTimelines checks the renderers hang off traced reports.
func TestReportTimelines(t *testing.T) {
	s := tinySession(t, WithTrace())
	report, err := s.Simulate(MethodHelix)
	if err != nil {
		t.Fatal(err)
	}
	if out := report.TimelineASCII(100); !strings.Contains(out, "P0") {
		t.Error("traced report must render an ASCII timeline")
	}
	if out := report.TimelineSVG(800); !strings.Contains(out, "<svg") {
		t.Error("traced report must render an SVG timeline")
	}
	// Untraced reports render nothing rather than panicking.
	plain, err := tinySession(t).Simulate(MethodHelix)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TimelineASCII(100) != "" || plain.TimelineSVG(800) != "" {
		t.Error("untraced report must render empty timelines")
	}
}

// TestReportCSV checks the CSV surface.
func TestReportCSV(t *testing.T) {
	s := tinySession(t)
	sim, err := s.Simulate(Method1F1B)
	if err != nil {
		t.Fatal(err)
	}
	num, err := s.Run(s.NumericEngine(1), Method1F1B)
	if err != nil {
		t.Fatal(err)
	}
	header := ReportCSVHeader()
	for _, r := range []*Report{sim, num} {
		if got := len(r.CSVRow()); got != len(header) {
			t.Errorf("CSV row has %d columns, header %d", got, len(header))
		}
	}
	var buf bytes.Buffer
	if err := WriteReportsCSV(&buf, []*Report{sim, num}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Errorf("want header + 2 rows, got %d lines", len(lines))
	}
}

// TestMethodRegistry checks the registry-driven lookups.
func TestMethodRegistry(t *testing.T) {
	if len(MethodInfos()) != len(Methods()) {
		t.Error("MethodInfos and Methods must agree")
	}
	for _, info := range MethodInfos() {
		if info.Description == "" {
			t.Errorf("%s: empty description", info.Name)
		}
	}
	if m, ok := LookupMethod("helixpipe"); !ok || m != MethodHelix {
		t.Errorf("case-insensitive lookup failed: %v %v", m, ok)
	}
	if _, ok := LookupMethod("nope"); ok {
		t.Error("unknown method must not resolve")
	}
	// Baselines first, as the paper lists them.
	if ms := Methods(); ms[0] != MethodGPipe || ms[len(ms)-1] != MethodHelixNoRecompute {
		t.Errorf("registry order wrong: %v", ms)
	}
}

// TestHelixOptionsOverride checks WithHelixOptions pins the variant.
func TestHelixOptionsOverride(t *testing.T) {
	pinned := tinySession(t, WithHelixOptions(HelixOptions{Fold: 1, Recompute: false}))
	plan, err := pinned.Plan(MethodHelix)
	if err != nil {
		t.Fatal(err)
	}
	// Fold 1 uses blocking sends — detectable in the plan.
	blocking := false
	for _, ops := range plan.Ops {
		for _, op := range ops {
			if op.Blocking {
				blocking = true
			}
		}
	}
	if !blocking {
		t.Error("fold-1 override must produce blocking sends")
	}
}
