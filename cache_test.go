package helixpipe

import (
	"bytes"
	"errors"
	"testing"
)

// TestReportCacheKeyResolvedSpecs pins the cache's content addressing: keys
// hash the resolved spec, so two syntactically different specs describing
// the same experiment share an entry, and any semantic difference splits
// them.
func TestReportCacheKeyResolvedSpecs(t *testing.T) {
	cache := NewReportCache()
	base := &ExperimentSpec{Model: "3B", Cluster: "A800", SeqLen: 32768,
		Stages: 4, Methods: []string{"HelixPipe"}}
	// Same experiment, different surface syntax: lowercase method name and
	// explicitly spelled defaults resolve to the same normalized spec.
	resolvedTwin, err := base.Resolved()
	if err != nil {
		t.Fatal(err)
	}
	aliased := &ExperimentSpec{Model: "3B", Cluster: "A800", SeqLen: 32768,
		Stages: 4, Methods: []string{"helixpipe"}}

	k1, err := cache.Key(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cache.Key(resolvedTwin)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := cache.Key(aliased)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || k1 != k3 {
		t.Errorf("equivalent specs keyed differently: %s / %s / %s", k1, k2, k3)
	}

	changed := *base
	changed.SeqLen = 65536
	k4, err := cache.Key(&changed)
	if err != nil {
		t.Fatal(err)
	}
	if k4 == k1 {
		t.Error("different seq_len keyed identically")
	}

	// Extra components (a carve signature) split otherwise-identical specs.
	k5, err := cache.Key(base, "carve=gpu=A800|1x4(nvlink,200,6e-06)")
	if err != nil {
		t.Fatal(err)
	}
	if k5 == k1 {
		t.Error("extra key component ignored")
	}

	if _, err := cache.Key(&ExperimentSpec{Model: "no-such-model"}); err == nil {
		t.Error("unresolvable spec keyed without error")
	}
}

// TestReportCacheDo pins hit/miss behavior: first Do computes, the second
// returns the stored report without recomputing, and a compute error leaves
// the key empty.
func TestReportCacheDo(t *testing.T) {
	cache := NewReportCache()
	want := &Report{Method: "HelixPipe"}
	computes := 0
	compute := func() (*Report, error) {
		computes++
		return want, nil
	}

	r, hit, err := cache.Do("k", compute)
	if err != nil {
		t.Fatal(err)
	}
	if hit || r != want || computes != 1 {
		t.Errorf("first Do: hit=%v computes=%d", hit, computes)
	}
	r, hit, err = cache.Do("k", compute)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || r != want || computes != 1 {
		t.Errorf("second Do: hit=%v computes=%d (recomputed a cached key)", hit, computes)
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses, want 1/1", hits, misses)
	}
	if cache.Len() != 1 {
		t.Errorf("len = %d, want 1", cache.Len())
	}

	// A failing compute is not cached: the next Do retries.
	boom := errors.New("boom")
	if _, _, err := cache.Do("bad", func() (*Report, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v, want boom", err)
	}
	if _, hit, err := cache.Do("bad", compute); err != nil || hit {
		t.Errorf("after failed compute: hit=%v err=%v, want fresh miss", hit, err)
	}
	if computes != 2 {
		t.Errorf("computes = %d, want 2", computes)
	}
}

// TestReportCacheSharedAcrossFleetRuns is the integration angle: one cache
// shared across two Session.Fleet runs on the same stream turns every
// simulation of the second run into a hit.
func TestReportCacheSharedAcrossFleetRuns(t *testing.T) {
	spec, err := ParseSpecFile("examples/fleet_capacity/fleet_stream.json")
	if err != nil {
		t.Fatal(err)
	}
	session, runset, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	fs := *runset.Fleet
	fs.Cache = NewReportCache()
	if _, err := session.Fleet(fs); err != nil {
		t.Fatal(err)
	}
	_, missesFirst := fs.Cache.Stats()
	if missesFirst == 0 {
		t.Fatal("first run missed nothing; the cache cannot have simulated")
	}
	report, err := session.Fleet(fs)
	if err != nil {
		t.Fatal(err)
	}
	_, missesSecond := fs.Cache.Stats()
	if missesSecond != missesFirst {
		t.Errorf("second run added %d misses; the shared cache should cover the whole stream",
			missesSecond-missesFirst)
	}
	if report.CacheHits != len(report.JobRecords) {
		t.Errorf("second run: %d hits over %d jobs, want every job cached",
			report.CacheHits, len(report.JobRecords))
	}
}

// TestSweepCacheByteIdenticalReports is the cache-correctness contract: the
// same sweep with the cache enabled and disabled produces byte-identical
// Report JSON, and the hit count equals the number of duplicate cells.
func TestSweepCacheByteIdenticalReports(t *testing.T) {
	base, err := NewSession(Model3B(), A800Cluster())
	if err != nil {
		t.Fatal(err)
	}
	// The duplicated 8192 axis value makes 1 (seqlen) x 2 (stages) x 2
	// (methods) = 4 exact duplicate cells in the 12-cell grid.
	sw := Sweep{
		Methods: []Method{"1F1B", "HelixPipe"},
		SeqLens: []int{8192, 8192, 16384},
		Stages:  []int{2, 4},
	}
	cache := NewReportCache()
	cached, err := base.With(WithReportCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := base.With(WithoutReportCache())
	if err != nil {
		t.Fatal(err)
	}
	withCache, err := cached.Sweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	withoutCache, err := uncached.Sweep(sw)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := WriteReportsJSON(&a, withCache); err != nil {
		t.Fatal(err)
	}
	if err := WriteReportsJSON(&b, withoutCache); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("cached sweep JSON differs from the uncached sweep")
	}

	hits, misses := cache.Stats()
	if wantHits, wantMisses := 4, 8; hits != wantHits || misses != wantMisses {
		t.Errorf("cache stats = %d hits / %d misses, want %d / %d",
			hits, misses, wantHits, wantMisses)
	}

	// A second identical sweep on the shared cache is all hits.
	again, err := cached.Sweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(withCache) {
		t.Fatalf("second sweep yielded %d reports, want %d", len(again), len(withCache))
	}
	if _, misses := cache.Stats(); misses != 8 {
		t.Errorf("second sweep re-simulated: %d misses, want 8", misses)
	}
}

// TestSweepPrivateCacheDedupes pins the default path: without an attached
// cache, one Stream invocation still dedupes its own duplicate cells via a
// private cache, and consecutive invocations stay independent.
func TestSweepPrivateCacheDedupes(t *testing.T) {
	base, err := NewSession(Model3B(), A800Cluster())
	if err != nil {
		t.Fatal(err)
	}
	sw := Sweep{Methods: []Method{"1F1B"}, SeqLens: []int{8192, 8192}, Stages: []int{2}}
	reports, err := base.Sweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("got %d reports, want 2", len(reports))
	}
	// The duplicate cell shares the first cell's Report pointer: one
	// simulation, yielded twice.
	if reports[0] != reports[1] {
		t.Error("duplicate cells did not share one cached simulation")
	}
}

// TestSpecNoCacheDisablesCaching proves the spec field reaches the session:
// a no_cache spec simulates every duplicate.
func TestSpecNoCacheDisablesCaching(t *testing.T) {
	spec := &ExperimentSpec{Model: "3B", Cluster: "A800", SeqLen: 8192, Stages: 2,
		Methods: []string{"1F1B"}, NoCache: true}
	session, _, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if session.streamCache() != nil {
		t.Error("no_cache spec still returned a stream cache")
	}
	sw := Sweep{Methods: []Method{"1F1B"}, SeqLens: []int{8192, 8192}, Stages: []int{2}}
	reports, err := session.Sweep(sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) == 2 && reports[0] == reports[1] {
		t.Error("no_cache session shared one simulation across duplicate cells")
	}
}
